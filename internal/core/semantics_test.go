package core

import (
	"testing"
	"testing/quick"

	"dsm/internal/arch"
)

// refWord is a pure-Go reference model of one word's operation semantics
// (single processor, so no concurrency; reservation per the paper: set by
// LL, consumed by SC, cleared by any write).
type refWord struct {
	value arch.Word
	resv  bool
}

func (r *refWord) apply(op OpKind, val, val2 arch.Word) (arch.Word, bool) {
	old := r.value
	switch op {
	case OpLoad, OpLoadExclusive:
		return old, true
	case OpDropCopy:
		return 0, true
	case OpStore:
		r.value = val
		r.resv = false
		return old, true
	case OpFetchAdd:
		r.value = old + val
		r.resv = false
		return old, true
	case OpFetchStore:
		r.value = val
		r.resv = false
		return old, true
	case OpFetchOr:
		r.value = old | val
		r.resv = false
		return old, true
	case OpTestAndSet:
		r.value = 1
		r.resv = false
		return old, true
	case OpCAS:
		if old == val {
			r.value = val2
			r.resv = false
			return old, true
		}
		return old, false
	case OpLL:
		r.resv = true
		return old, true
	case OpSC:
		if r.resv {
			r.value = val
			r.resv = false
			return old, true
		}
		return old, false
	}
	panic("unknown op")
}

// decodeOps turns raw fuzz bytes into an operation sequence. Between an LL
// and its SC only loads are generated (the paper forbids stores there, and
// real processors make them unpredictable).
func decodeOps(raw []byte) []Request {
	var out []Request
	pendingLL := false
	for i := 0; i+2 < len(raw); i += 3 {
		sel := int(raw[i])
		val := arch.Word(raw[i+1])
		val2 := arch.Word(raw[i+2])
		var op OpKind
		if pendingLL {
			switch sel % 3 {
			case 0:
				op = OpLoad
			case 1:
				op = OpSC
				pendingLL = false
			case 2:
				op = OpLoad
			}
		} else {
			ops := []OpKind{OpLoad, OpStore, OpFetchAdd, OpFetchStore, OpFetchOr,
				OpTestAndSet, OpCAS, OpLL, OpLoadExclusive, OpDropCopy, OpSC}
			op = ops[sel%len(ops)]
			if op == OpLL {
				pendingLL = true
			}
		}
		out = append(out, Request{Op: op, Val: val, Val2: val2})
	}
	return out
}

// TestPropertySingleProcSemantics runs random operation sequences from a
// single processor against every policy and checks value and success
// results against the reference model at every step.
func TestPropertySingleProcSemantics(t *testing.T) {
	for _, pol := range []Policy{PolicyINV, PolicyUPD, PolicyUNC} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			f := func(raw []byte) bool {
				ops := decodeOps(raw)
				if len(ops) == 0 {
					return true
				}
				h := newH(t)
				a := h.addrAtHome(1, 0)
				h.sys.SetPolicy(a, pol)
				ref := &refWord{}
				for i, req := range ops {
					req.Addr = a
					got := h.doReq(0, req)
					wantVal, wantOK := ref.apply(req.Op, req.Val, req.Val2)
					if got.OK != wantOK {
						t.Logf("op %d (%v val=%d val2=%d): ok=%v want %v",
							i, req.Op, req.Val, req.Val2, got.OK, wantOK)
						return false
					}
					// Value checks apply to value-returning operations.
					switch req.Op {
					case OpLoad, OpLoadExclusive, OpFetchAdd, OpFetchStore,
						OpFetchOr, OpTestAndSet, OpLL:
						if got.Value != wantVal {
							t.Logf("op %d (%v): value=%d want %d", i, req.Op, got.Value, wantVal)
							return false
						}
					}
				}
				h.drain()
				final := h.do(3, OpLoad, a).Value
				if final != ref.value {
					t.Logf("final value %d, reference %d", final, ref.value)
					return false
				}
				h.sys.CheckCoherence()
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestPropertyCASVariantsSemanticsEquivalentSequentially verifies that
// INV, INVd, and INVs are indistinguishable to a single processor: the
// variants differ only in caching behaviour on failure, never in results.
func TestPropertyCASVariantsSemanticsEquivalentSequentially(t *testing.T) {
	f := func(raw []byte) bool {
		ops := decodeOps(raw)
		if len(ops) == 0 {
			return true
		}
		type outcome struct {
			val arch.Word
			ok  bool
		}
		var runs [3][]outcome
		for vi, variant := range []CASVariant{CASPlain, CASDeny, CASShare} {
			h := newH(t, func(c *Config) { c.CAS = variant })
			a := h.addrAtHome(2, 0)
			for _, req := range ops {
				req.Addr = a
				r := h.doReq(1, req)
				runs[vi] = append(runs[vi], outcome{r.Value, r.OK})
			}
		}
		for i := range runs[0] {
			if runs[0][i] != runs[1][i] || runs[0][i] != runs[2][i] {
				t.Logf("op %d: INV=%v INVd=%v INVs=%v", i, runs[0][i], runs[1][i], runs[2][i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
