package asm

import (
	"strings"
	"testing"

	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
)

func newM(procs int) *machine.Machine {
	cfg := core.DefaultConfig()
	cfg.Nodes = procs
	switch {
	case procs <= 4:
		cfg.Mesh.Width, cfg.Mesh.Height = 2, 2
	default:
		cfg.Mesh.Width, cfg.Mesh.Height = 4, 4
	}
	return machine.New(cfg)
}

// ------------------------------------------------------------ assembler --

func TestAssembleBasics(t *testing.T) {
	p, err := Assemble(`
		# arithmetic demo
		li   $t0, 5
		addiu $t1, $t0, 3
	loop:	subu $t1, $t1, $t0   ; comment
		bne  $t1, $zero, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 5 {
		t.Fatalf("assembled %d instructions", len(p.Instrs))
	}
	if p.Labels["loop"] != 2 {
		t.Fatalf("label loop at %d", p.Labels["loop"])
	}
	if p.Instrs[3].Op != BNE || p.Instrs[3].Target != 2 {
		t.Fatalf("branch = %+v", p.Instrs[3])
	}
}

func TestAssembleRegisterNames(t *testing.T) {
	p := MustAssemble("move $t3, $s7\nmove $31, $a2\nhalt")
	if p.Instrs[0].Rd != 11 || p.Instrs[0].Rs != 23 {
		t.Fatalf("t3/s7 = %+v", p.Instrs[0])
	}
	if p.Instrs[1].Rd != 31 || p.Instrs[1].Rs != 6 {
		t.Fatalf("$31/a2 = %+v", p.Instrs[1])
	}
}

func TestAssembleMemOperands(t *testing.T) {
	p := MustAssemble("lw $t0, 8($a0)\nsw $t0, ($a1)\nhalt")
	if p.Instrs[0].Imm != 8 || p.Instrs[0].Rs != 4 {
		t.Fatalf("lw = %+v", p.Instrs[0])
	}
	if p.Instrs[1].Imm != 0 || p.Instrs[1].Rs != 5 {
		t.Fatalf("sw = %+v", p.Instrs[1])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"bogus $t0":          "unknown mnemonic",
		"li $t0":             "expects 2 operands",
		"li $zz, 1":          "bad register",
		"lw $t0, 4[$a0]":     "bad memory operand",
		"beq $t0, $t1, miss": "undefined label",
		"x: nop\nx: halt":    "duplicate label",
		"":                   "empty program",
		"li $t0, zork":       "bad immediate",
	}
	for src, want := range cases {
		_, err := Assemble(src)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("Assemble(%q) error = %v, want %q", src, err, want)
		}
	}
}

func TestOpcodeString(t *testing.T) {
	if LL.String() != "ll" || CAS.String() != "cas" || PAUSER.String() != "pauser" {
		t.Fatal("mnemonics wrong")
	}
}

// ---------------------------------------------------------- interpreter --

// runOn executes the program on processor 0 of a fresh 4-node machine.
func runOn(t *testing.T, src string, init map[Reg]arch.Word) (CPU, *machine.Machine) {
	t.Helper()
	m := newM(4)
	prog := MustAssemble(src)
	var cpu CPU
	progs := make([]func(*machine.Proc), m.Procs())
	progs[0] = func(p *machine.Proc) { cpu = Run(p, prog, init, 0) }
	m.RunEach(progs)
	return cpu, m
}

func TestInterpArithmetic(t *testing.T) {
	cpu, _ := runOn(t, `
		li    $t0, 6
		li    $t1, 7
		addu  $t2, $t0, $t1    # 13
		subu  $t3, $t2, $t0    # 7
		or    $t4, $t0, $t1    # 7
		and   $t5, $t0, $t1    # 6
		xor   $t6, $t0, $t1    # 1
		sltu  $t7, $t0, $t1    # 1
		sll   $t8, $t0, 2      # 24
		srl   $t9, $t8, 3      # 3
		halt
	`, nil)
	want := map[Reg]arch.Word{10: 13, 11: 7, 12: 7, 13: 6, 14: 1, 15: 1, 24: 24, 25: 3}
	for r, v := range want {
		if cpu.Regs[r] != v {
			t.Errorf("$%d = %d, want %d", r, cpu.Regs[r], v)
		}
	}
}

func TestInterpRegisterZeroImmutable(t *testing.T) {
	cpu, _ := runOn(t, "li $zero, 99\naddiu $t0, $zero, 1\nhalt", nil)
	if cpu.Regs[0] != 0 || cpu.Regs[8] != 1 {
		t.Fatalf("$zero = %d, $t0 = %d", cpu.Regs[0], cpu.Regs[8])
	}
}

func TestInterpLoadStore(t *testing.T) {
	m := newM(4)
	a := m.Alloc(32)
	prog := MustAssemble(`
		li  $t0, 42
		sw  $t0, 0($a0)
		lw  $t1, 0($a0)
		sw  $t1, 4($a0)
		halt
	`)
	progs := make([]func(*machine.Proc), m.Procs())
	progs[0] = func(p *machine.Proc) { Run(p, prog, map[Reg]arch.Word{4: arch.Word(a)}, 0) }
	m.RunEach(progs)
	if m.Peek(a) != 42 || m.Peek(a+4) != 42 {
		t.Fatalf("memory = %d, %d", m.Peek(a), m.Peek(a+4))
	}
}

func TestInterpBranchesAndLoop(t *testing.T) {
	// Sum 1..10 with a loop.
	cpu, _ := runOn(t, `
		li   $t0, 10      # i
		li   $t1, 0       # sum
	loop:	addu $t1, $t1, $t0
		addiu $t0, $t0, -1
		bgtz $t0, loop
		halt
	`, nil)
	if cpu.Regs[9] != 55 {
		t.Fatalf("sum = %d, want 55", cpu.Regs[9])
	}
}

func TestInterpInstructionTimingChargesCycles(t *testing.T) {
	m := newM(4)
	prog := MustAssemble("nop\nnop\nnop\nhalt")
	var elapsedStart, elapsedEnd uint64
	progs := make([]func(*machine.Proc), m.Procs())
	progs[0] = func(p *machine.Proc) {
		elapsedStart = uint64(p.Now())
		Run(p, prog, nil, 0)
		elapsedEnd = uint64(p.Now())
	}
	m.RunEach(progs)
	if elapsedEnd-elapsedStart < 3 {
		t.Fatalf("3 nops took %d cycles", elapsedEnd-elapsedStart)
	}
}

func TestInterpBudgetPanicsOnLivelock(t *testing.T) {
	m := newM(4)
	prog := MustAssemble("spin: j spin\nhalt")
	progs := make([]func(*machine.Proc), m.Procs())
	panicked := false
	progs[0] = func(p *machine.Proc) {
		defer func() { panicked = recover() != nil }()
		Run(p, prog, nil, 1000)
	}
	m.RunEach(progs)
	if !panicked {
		t.Fatal("infinite loop did not trip the budget")
	}
}

// ------------------------------------------------- atomic instructions --

func TestInterpFetchAndPhi(t *testing.T) {
	m := newM(4)
	a := m.AllocSync(core.PolicyUNC)
	prog := MustAssemble(`
		li   $t0, 5
		faa  $t1, $t0, 0($a0)   # t1 = 0, mem = 5
		li   $t2, 3
		fas  $t3, $t2, 0($a0)   # t3 = 5, mem = 3
		li   $t4, 12
		faor $t5, $t4, 0($a0)   # t5 = 3, mem = 15
		tas  $t6, 4($a0)        # t6 = 0, mem[1] = 1
		halt
	`)
	var cpu CPU
	progs := make([]func(*machine.Proc), m.Procs())
	progs[0] = func(p *machine.Proc) { cpu = Run(p, prog, map[Reg]arch.Word{4: arch.Word(a)}, 0) }
	m.RunEach(progs)
	if cpu.Regs[9] != 0 || cpu.Regs[11] != 5 || cpu.Regs[13] != 3 || cpu.Regs[14] != 0 {
		t.Fatalf("regs = t1:%d t3:%d t5:%d t6:%d", cpu.Regs[9], cpu.Regs[11], cpu.Regs[13], cpu.Regs[14])
	}
	if m.Peek(a) != 15 || m.Peek(a+4) != 1 {
		t.Fatalf("memory = %d, %d", m.Peek(a), m.Peek(a+4))
	}
}

func TestInterpCAS(t *testing.T) {
	m := newM(4)
	a := m.AllocSync(core.PolicyINV)
	prog := MustAssemble(`
		li  $t0, 0
		li  $t1, 9
		cas $t2, $t0, $t1, 0($a0)   # succeeds: t2=1, mem=9
		cas $t3, $t0, $t1, 0($a0)   # fails: expected 0, is 9
		halt
	`)
	var cpu CPU
	progs := make([]func(*machine.Proc), m.Procs())
	progs[0] = func(p *machine.Proc) { cpu = Run(p, prog, map[Reg]arch.Word{4: arch.Word(a)}, 0) }
	m.RunEach(progs)
	if cpu.Regs[10] != 1 || cpu.Regs[11] != 0 {
		t.Fatalf("cas results = %d, %d", cpu.Regs[10], cpu.Regs[11])
	}
	if m.Peek(a) != 9 {
		t.Fatalf("memory = %d", m.Peek(a))
	}
}

// llscCounter is a lock-free counter in assembly: $a0 counter address,
// $a1 iterations.
const llscCounter = `
	li    $s0, 0
loop:	beq   $s0, $a1, done
retry:	ll    $t0, 0($a0)
	addiu $t1, $t0, 1
	sc    $t1, 0($a0)
	beq   $t1, $zero, retry
	addiu $s0, $s0, 1
	j     loop
done:	halt
`

func TestInterpLLSCCounterAllProcs(t *testing.T) {
	const procs, iters = 4, 8
	m := newM(procs)
	a := m.AllocSync(core.PolicyINV)
	prog := MustAssemble(llscCounter)
	m.Run(func(p *machine.Proc) {
		Run(p, prog, map[Reg]arch.Word{4: arch.Word(a), 5: iters}, 0)
	})
	if m.Peek(a) != procs*iters {
		t.Fatalf("counter = %d, want %d", m.Peek(a), procs*iters)
	}
	m.System().CheckCoherence()
}

// ttsLock is the paper's test-and-test-and-set lock with bounded
// exponential backoff, in assembly (the paper: "we replaced the library
// locks with an assembly language implementation of the
// test-and-test-and-set lock with bounded exponential backoff").
// $a0 lock address, $a1 counter address, $a2 iterations.
const ttsLock = `
	li     $s0, 0           # completed iterations
outer:	beq    $s0, $a2, done
	li     $s1, 16          # backoff bound (min 16, max 1024)
test:	lw     $t0, 0($a0)      # test: spin on ordinary loads
	beq    $t0, $zero, try
	pause  4
	j      test
try:	tas    $t0, 0($a0)      # test-and-set
	beq    $t0, $zero, crit
	rand   $t1, $s1         # failed: back off with jitter
	addiu  $t1, $t1, 1
	pauser $t1
	sll    $s1, $s1, 1      # double the bound
	li     $t2, 1024
	sltu   $t3, $t2, $s1
	beq    $t3, $zero, test
	move   $s1, $t2         # clamp at the maximum
	j      test
crit:	lw     $t4, 0($a1)      # critical section: racy read-modify-write
	pause  12
	addiu  $t4, $t4, 1
	sw     $t4, 0($a1)
	sw     $zero, 0($a0)    # release
	addiu  $s0, $s0, 1
	j      outer
done:	halt
`

func TestInterpTTSLockMutualExclusion(t *testing.T) {
	const procs, iters = 8, 5
	m := newM(procs)
	lock := m.AllocSync(core.PolicyINV)
	counter := m.Alloc(4)
	prog := MustAssemble(ttsLock)
	m.Run(func(p *machine.Proc) {
		Run(p, prog, map[Reg]arch.Word{
			4: arch.Word(lock), 5: arch.Word(counter), 6: iters,
		}, 0)
	})
	if got := m.Peek(counter); got != procs*iters {
		t.Fatalf("critical-section counter = %d, want %d (lock failed)", got, procs*iters)
	}
	m.System().CheckCoherence()
}

func TestInterpAssemblyMatchesGoLock(t *testing.T) {
	// The assembly TTS lock and the Go TTS lock must both preserve every
	// increment; their timings will differ (instruction-level execution
	// is costlier), but correctness is identical.
	const procs, iters = 4, 6
	m := newM(procs)
	lock := m.AllocSync(core.PolicyUNC)
	counter := m.Alloc(4)
	prog := MustAssemble(ttsLock)
	elapsed := m.Run(func(p *machine.Proc) {
		Run(p, prog, map[Reg]arch.Word{
			4: arch.Word(lock), 5: arch.Word(counter), 6: iters,
		}, 0)
	})
	if m.Peek(counter) != procs*iters || elapsed == 0 {
		t.Fatalf("counter = %d after %d cycles", m.Peek(counter), elapsed)
	}
}

func TestInterpDeterministic(t *testing.T) {
	run := func() uint64 {
		m := newM(4)
		a := m.AllocSync(core.PolicyINV)
		prog := MustAssemble(llscCounter)
		return uint64(m.Run(func(p *machine.Proc) {
			Run(p, prog, map[Reg]arch.Word{4: arch.Word(a), 5: 5}, 0)
		}))
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("assembly runs differ: %d vs %d", a, b)
	}
}

func TestInterpLoadExclusiveAndDrop(t *testing.T) {
	m := newM(4)
	a := m.AllocSyncAt(1, core.PolicyINV)
	prog := MustAssemble(`
		ldex $t0, 0($a0)      # exclusive read
		li   $t1, 7
		li   $t2, 0
		cas  $t3, $t2, $t1, 0($a0)  # local hit after ldex
		dropc 0($a0)
		halt
	`)
	var cpu CPU
	progs := make([]func(*machine.Proc), m.Procs())
	progs[0] = func(p *machine.Proc) { cpu = Run(p, prog, map[Reg]arch.Word{4: arch.Word(a)}, 0) }
	m.RunEach(progs)
	if cpu.Regs[11] != 1 || m.Peek(a) != 7 {
		t.Fatalf("cas = %d, mem = %d", cpu.Regs[11], m.Peek(a))
	}
	// The copy was dropped; the directory holds the line unowned.
	if m.System().Cache(0).CacheArray().Peek(a) != nil {
		t.Fatal("dropc left a cached copy")
	}
}
